(** Term simplification: constant folding plus the algebraic identities
    that matter for lifted machine code (flag computations produce many
    [x ^ x], [x & mask], double-extract patterns). *)

module Phys = Hashtbl.Make (struct
    type t = Obj.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

let empty_env : Eval.env = Hashtbl.create 1

let is_const = function Expr.Const _ -> true | _ -> false

let const_value = function
  | Expr.Const (v, _) -> v
  | _ -> invalid_arg "const_value"

(** Rewrite memo, keyed on physical identity.  A fresh one is made per
    [run] call unless the caller supplies a persistent one — sessions
    do, so re-simplifying a path-predicate prefix is a table lookup per
    node instead of a re-walk of the whole predicate. *)
type cache = Expr.t Phys.t

let create_cache () : cache = Phys.create 1024

let run ?cache (e : Expr.t) : Expr.t =
  let cache : Expr.t Phys.t =
    match cache with Some c -> c | None -> Phys.create 256
  in
  let rec go e =
    let key = Obj.repr e in
    match Phys.find_opt cache key with
    | Some v -> v
    | None ->
      let v = rewrite e in
      Phys.replace cache key v;
      v
  and rewrite (e : Expr.t) : Expr.t =
    let open Expr in
    match e with
    | Var _ | Const _ -> e
    | Unop (op, a) -> (
        let a = go a in
        match (op, a) with
        | _, Const _ -> fold (Unop (op, a))
        | Not, Unop (Not, x) -> x
        | Neg, Unop (Neg, x) -> x
        | _ -> Unop (op, a))
    | Binop (op, a, b) -> (
        let a = go a and b = go b in
        let w = width_of a in
        match (op, a, b) with
        | _, Const _, Const _ -> fold (Binop (op, a, b))
        | Add, x, Const (0L, _) | Add, Const (0L, _), x -> x
        | Sub, x, Const (0L, _) -> x
        | Sub, x, y when equal x y -> Const (0L, w)
        | Mul, _, Const (0L, _) | Mul, Const (0L, _), _ -> Const (0L, w)
        | Mul, x, Const (1L, _) | Mul, Const (1L, _), x -> x
        | And, _, Const (0L, _) | And, Const (0L, _), _ -> Const (0L, w)
        | And, x, Const (m, _) when m = mask w -> x
        | And, Const (m, _), x when m = mask w -> x
        | And, x, y when equal x y -> x
        | Or, x, Const (0L, _) | Or, Const (0L, _), x -> x
        | Or, x, y when equal x y -> x
        | Xor, x, Const (0L, _) | Xor, Const (0L, _), x -> x
        | Xor, x, y when equal x y -> Const (0L, w)
        | (Shl | Lshr | Ashr), x, Const (0L, _) -> x
        | _ -> Binop (op, a, b))
    | Cmp (op, a, b) -> (
        let a = go a and b = go b in
        match (op, a, b) with
        | _, Const _, Const _ -> fold (Cmp (op, a, b))
        | Eq, x, y when equal x y -> tru
        | (Ult | Slt), x, y when equal x y -> fls
        | (Ule | Sle), x, y when equal x y -> tru
        (* (x = c1) on zext/concat of a narrower term: push through *)
        | Eq, Zext (_, x), Const (v, _) ->
          let wx = width_of x in
          if Int64.logand v (Int64.lognot (mask wx)) <> 0L then fls
          else go (Cmp (Eq, x, Const (v, wx)))
        | _ -> Cmp (op, a, b))
    | Ite (c, a, b) -> (
        let c = go c and a = go a and b = go b in
        match c with
        | Const (1L, 1) -> a
        | Const (0L, 1) -> b
        | _ -> if Expr.equal a b then a else Ite (c, a, b))
    | Extract (hi, lo, a) -> (
        let a = go a in
        let w = width_of a in
        if lo = 0 && hi = w - 1 then a
        else
          match a with
          | Const _ -> fold (Extract (hi, lo, a))
          | Extract (_, lo', x) -> go (Extract (hi + lo', lo + lo', x))
          | Concat (hi_part, lo_part) ->
            (* stay within one side when possible *)
            let wl = width_of lo_part in
            if hi < wl then go (Extract (hi, lo, lo_part))
            else if lo >= wl then go (Extract (hi - wl, lo - wl, hi_part))
            else Extract (hi, lo, a)
          | Zext (_, x) when hi < width_of x -> go (Extract (hi, lo, x))
          | Zext (_, x) when lo >= width_of x -> Const (0L, hi - lo + 1)
          | _ -> Extract (hi, lo, a))
    | Concat (a, b) -> (
        let a = go a and b = go b in
        match (a, b) with
        | Const _, Const _ -> fold (Concat (a, b))
        | Const (0L, wz), x -> go (Zext (wz + width_of x, x))
        | _ -> Concat (a, b))
    | Zext (w, a) -> (
        let a = go a in
        if width_of a = w then a
        else
          match a with
          | Const _ -> fold (Zext (w, a))
          | Zext (_, x) -> go (Zext (w, x))
          | _ -> Zext (w, a))
    | Sext (w, a) -> (
        let a = go a in
        if width_of a = w then a
        else match a with Const _ -> fold (Sext (w, a)) | _ -> Sext (w, a))
    | Fbin (op, a, b) ->
      let a = go a and b = go b in
      if is_const a && is_const b then fold (Fbin (op, a, b))
      else Fbin (op, a, b)
    | Fcmp (op, a, b) ->
      let a = go a and b = go b in
      if is_const a && is_const b then fold (Fcmp (op, a, b))
      else Fcmp (op, a, b)
    | Fsqrt a ->
      let a = go a in
      if is_const a then fold (Fsqrt a) else Fsqrt a
    | Fof_int a ->
      let a = go a in
      if is_const a then fold (Fof_int a) else Fof_int a
    | Fto_int a ->
      let a = go a in
      if is_const a then fold (Fto_int a) else Fto_int a
  and fold e = Expr.Const (Eval.eval ~memo:false empty_env e, Expr.width_of e)
  in
  go e
