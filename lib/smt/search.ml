(** Search-based fallback for constraints containing floating-point
    terms: seeded trials, interesting values, then hill climbing over
    IEEE-754 doubles.  Hoisted out of {!Solver} so both the one-shot
    front-end and {!Session} share one implementation.

    The fallback is an *extension* relative to the paper's tools
    (which simply fail on FP, the Es3 rows): engines keep it disabled
    to reproduce Table II. *)

(* soft score of one constraint: 1.0 when satisfied, else a value in
   (0, 1) that grows as the two compared sides approach each other *)
let soft_score env (c : Expr.t) =
  if Eval.holds env c then 1.0
  else
    let dist_of a b as_float =
      let va = Eval.eval env a and vb = Eval.eval env b in
      if as_float then
        let fa = Int64.float_of_bits va and fb = Int64.float_of_bits vb in
        if Float.is_nan fa || Float.is_nan fb then 1e30
        else Float.abs (fa -. fb)
      else Int64.to_float (Int64.abs (Int64.sub va vb))
    in
    match c with
    | Expr.Cmp (_, a, b) -> 0.5 /. (1.0 +. dist_of a b false)
    | Expr.Fcmp (_, a, b) -> 0.5 /. (1.0 +. dist_of a b true)
    | Expr.Unop (Not, Expr.Cmp (_, a, b)) -> 0.5 /. (1.0 +. 1.0 /. (1e-9 +. dist_of a b false))
    | _ -> 0.0

let score env constraints =
  List.fold_left (fun acc c -> acc +. soft_score env c) 0.0 constraints

(* deterministic xorshift for reproducible search; the state is local
   to each [fp_search] call so concurrent searches (or fuzz harnesses
   re-seeding per case) never interfere *)
let default_rng_seed = 0x2545F4914F6CDD1DL

let rand_bits state =
  let x = !state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  state := x;
  x

let rand_int state n =
  Int64.to_int (Int64.unsigned_rem (rand_bits state) (Int64.of_int n))

let interesting_bytes =
  [ 0L; 1L; 2L; 7L; 9L; 10L; 0x30L; 0x31L; 0x32L; 0x33L; 0x34L; 0x35L;
    0x36L; 0x37L; 0x38L; 0x39L; 0x41L; 0x61L; 0x7fL; 0xffL ]

let interesting_wide =
  [ 0L; 1L; -1L; 2L; 0x32L; 0x64L; 1024L; 0x7fffffffL; 0x80000000L;
    Int64.min_int; Int64.max_int;
    Int64.bits_of_float 0.0; Int64.bits_of_float 1.0;
    Int64.bits_of_float 1e-14; Int64.bits_of_float (-1.0) ]

let candidates_for (v : Expr.var) =
  if v.width <= 8 then interesting_bytes else interesting_wide

let fp_search ~iters ~seeds ?(rng_seed = default_rng_seed) constraints :
  (string * int64) list option =
  (* a zero seed would make xorshift degenerate; nudge it *)
  let rng_state = ref (if rng_seed = 0L then default_rng_seed else rng_seed) in
  let vars = Expr.vars_of_list constraints in
  if vars = [] then None
  else begin
    let env : Eval.env = Hashtbl.create 16 in
    List.iter (fun (v : Expr.var) -> Hashtbl.replace env v.vname 0L) vars;
    let load (seed : Eval.env) =
      List.iter
        (fun (v : Expr.var) ->
           Hashtbl.replace env v.vname
             (match Hashtbl.find_opt seed v.vname with
              | Some x -> x
              | None -> 0L))
        vars
    in
    let solved () = List.for_all (Eval.holds env) constraints in
    let snapshot () =
      List.map (fun (v : Expr.var) -> (v.vname, Hashtbl.find env v.vname)) vars
    in
    let result = ref None in
    (* 1. caller-provided seeds *)
    List.iter
      (fun seed ->
         if !result = None then begin
           load seed;
           if solved () then result := Some (snapshot ())
         end)
      seeds;
    (* 2. per-variable interesting values (one var at a time) *)
    if !result = None then begin
      List.iter (fun (v : Expr.var) -> Hashtbl.replace env v.vname 0L) vars;
      List.iter
        (fun (v : Expr.var) ->
           if !result = None then
             List.iter
               (fun cand ->
                  if !result = None then begin
                    Hashtbl.replace env v.vname cand;
                    if solved () then result := Some (snapshot ())
                  end)
               (candidates_for v))
        vars
    end;
    (* 3. hill climbing with random mutations *)
    if !result = None then begin
      let nv = List.length vars in
      let var_arr = Array.of_list vars in
      let best = ref (score env constraints) in
      let iter = ref 0 in
      while !result = None && !iter < iters do
        incr iter;
        let v = var_arr.(rand_int rng_state nv) in
        let old = Hashtbl.find env v.vname in
        let cands = candidates_for v in
        let mutated =
          match rand_int rng_state 4 with
          | 0 -> List.nth cands (rand_int rng_state (List.length cands))
          | 1 ->
            Int64.logxor old
              (Int64.shift_left 1L (rand_int rng_state (max 1 v.width)))
          | 2 -> Int64.add old 1L
          | _ -> Int64.sub old 1L
        in
        Hashtbl.replace env v.vname (Int64.logand mutated (Expr.mask v.width));
        if solved () then result := Some (snapshot ())
        else begin
          let s = score env constraints in
          if s >= !best then best := s
          else Hashtbl.replace env v.vname old (* revert *)
        end
      done
    end;
    !result
  end
