(** Lifting VX64 instructions to {!Bil} statements.

    The lifter is parameterised by a {!features} record describing
    what the modelled tool can translate; an instruction outside the
    feature set lifts to [Special], which the concolic layer reports
    as an Es1 (instruction lifting) error — exactly the failure mode
    the paper observes for Triton/BAP on [cvtsi2sd]/[ucomisd]. *)

open Bil

type features = { lift_fp : bool }

let full = { lift_fp = true }
let no_fp = { lift_fp = false }

let reg_var r = Var (Isa.Reg.show r, 64)
let xmm_var x = Var (Isa.Reg.show_xmm x, 64)

let flag_z = "ZF"
let flag_s = "SF"
let flag_c = "CF"
let flag_o = "OF"
let flag_p = "PF"

let fvar f = Var (f, 1)

let bits_of w = Isa.Insn.bits_of_width w
let bytes_of w = Isa.Insn.bytes_of_width w

let ea_exp ({ base; index; scale; disp } : Isa.Insn.mem) =
  let parts =
    (match base with Some r -> [ reg_var r ] | None -> [])
    @ (match index with
       | Some r ->
         [ (if scale = 1 then reg_var r
            else Binop (Mul, reg_var r, i64 (Int64.of_int scale))) ]
       | None -> [])
    @ (if disp <> 0L then [ i64 disp ] else [])
  in
  match parts with
  | [] -> i64 0L
  | e :: rest -> List.fold_left (fun acc x -> Binop (Add, acc, x)) e rest

let read_operand w (o : Isa.Insn.operand) =
  let bits = bits_of w in
  match o with
  | Reg r -> if bits = 64 then reg_var r else Extract (bits - 1, 0, reg_var r)
  | Imm v -> Int (Int64.logand v (Smt.Expr.mask bits), bits)
  | Mem m -> Load (ea_exp m, bytes_of w)

(* register writes follow the CPU's merge semantics *)
let write_reg w r value =
  let bits = bits_of w in
  if bits = 64 then Set (Isa.Reg.show r, 64, value)
  else if bits = 32 then Set (Isa.Reg.show r, 64, Zext (64, value))
  else
    Set (Isa.Reg.show r, 64, Concat (Extract (63, bits, reg_var r), value))

let write_operand w (o : Isa.Insn.operand) value =
  match o with
  | Reg r -> [ write_reg w r value ]
  | Mem m -> [ Store (ea_exp m, bytes_of w, value) ]
  | Imm _ -> [ Special "write to immediate" ]

let msb w e = Extract (bits_of w - 1, bits_of w - 1, e)

(* PF: set when the low byte of the result has even parity *)
let parity_exp res =
  let bit i = Extract (i, i, res) in
  let x = List.fold_left (fun acc i -> xor1 acc (bit i)) (bit 0) [1;2;3;4;5;6;7] in
  not1 x

let logic_flags w res =
  [ Set (flag_z, 1, eq res (int_ 0 (bits_of w)));
    Set (flag_s, 1, msb w res);
    Set (flag_c, 1, b0);
    Set (flag_o, 1, b0);
    Set (flag_p, 1, parity_exp res) ]

let add_flags w a b res =
  let sa = msb w a and sb = msb w b and sr = msb w res in
  [ Set (flag_z, 1, eq res (int_ 0 (bits_of w)));
    Set (flag_s, 1, sr);
    Set (flag_c, 1, Cmp (Ult, res, a));
    Set (flag_o, 1, and1 (not1 (xor1 sa sb)) (xor1 sr sa));
    Set (flag_p, 1, parity_exp res) ]

let sub_flags w a b res =
  let sa = msb w a and sb = msb w b and sr = msb w res in
  [ Set (flag_z, 1, eq res (int_ 0 (bits_of w)));
    Set (flag_s, 1, sr);
    Set (flag_c, 1, Cmp (Ult, a, b));
    Set (flag_o, 1, and1 (xor1 sa sb) (xor1 sr sa));
    Set (flag_p, 1, parity_exp res) ]

let cond_exp (c : Isa.Insn.cond) =
  let zf = fvar flag_z and sf = fvar flag_s and cf = fvar flag_c in
  let o_f = fvar flag_o and pf = fvar flag_p in
  match c with
  | E -> zf
  | NE -> not1 zf
  | L -> xor1 sf o_f
  | LE -> or1 zf (xor1 sf o_f)
  | G -> and1 (not1 zf) (not1 (xor1 sf o_f))
  | GE -> not1 (xor1 sf o_f)
  | B -> cf
  | BE -> or1 cf zf
  | A -> and1 (not1 cf) (not1 zf)
  | AE -> not1 cf
  | S -> sf
  | NS -> not1 sf
  | O -> o_f
  | NO -> not1 o_f
  | P -> pf
  | NP -> not1 pf

let rsp = reg_var Isa.Reg.RSP
let set_rsp e = Set (Isa.Reg.show Isa.Reg.RSP, 64, e)

(* store first at old-rsp-8, then move rsp, so both statements read
   the pre-push RSP *)
let push_value e =
  [ Store (Binop (Sub, rsp, i64 8L), 8, e);
    set_rsp (Binop (Sub, rsp, i64 8L)) ]

let xsrc_exp (xs : Isa.Insn.xsrc) =
  match xs with
  | Xreg x -> xmm_var x
  | Xmem m -> Load (ea_exp m, 8)

(* unsigned 64x64 high-half product, schoolbook on 32-bit halves *)
let umulh a b =
  let lo32 e = Binop (And, e, i64 0xffffffffL) in
  let hi32 e = Binop (Lshr, e, i64 32L) in
  let ll = Binop (Mul, lo32 a, lo32 b) in
  let lh = Binop (Mul, lo32 a, hi32 b) in
  let hl = Binop (Mul, hi32 a, lo32 b) in
  let hh = Binop (Mul, hi32 a, hi32 b) in
  let carry =
    hi32
      (Binop (Add, Binop (Add, lo32 lh, lo32 hl), hi32 ll))
  in
  Binop (Add, Binop (Add, hh, carry), Binop (Add, hi32 lh, hi32 hl))

let m_insns_lifted = Telemetry.Metrics.counter "lifter.insns_lifted"
let m_unmodeled = Telemetry.Metrics.counter "lifter.unmodeled"

(** [lift features ~next insn] produces the statement list; [next] is
    the fall-through address (needed to lower calls). *)
let lift_insn (features : features) ~(next : int64) (insn : Isa.Insn.t) :
  stmt list =
  if Isa.Insn.is_fp insn && not features.lift_fp then
    [ Special (Printf.sprintf "unsupported fp instruction: %s"
                 (Isa.Insn.mnemonic insn)) ]
  else
    match insn with
    | Mov (w, d, s) -> write_operand w d (read_operand w s)
    | Movzx (dw, d, sw, s) ->
      [ write_reg dw d (Zext (bits_of dw, read_operand sw s)) ]
    | Movsx (dw, d, sw, s) ->
      [ write_reg dw d (Sext (bits_of dw, read_operand sw s)) ]
    | Lea (d, m) -> [ Set (Isa.Reg.show d, 64, ea_exp m) ]
    | Alu (op, w, d, s) -> (
        let a = read_operand w d and b = read_operand w s in
        match op with
        | Add ->
          let res = Binop (Add, a, b) in
          (* bind the result once so flags and writeback agree *)
          Set ("t_res", bits_of w, res)
          :: add_flags w a b (Var ("t_res", bits_of w))
          @ write_operand w d (Var ("t_res", bits_of w))
        | Sub ->
          let res = Binop (Sub, a, b) in
          Set ("t_res", bits_of w, res)
          :: sub_flags w a b (Var ("t_res", bits_of w))
          @ write_operand w d (Var ("t_res", bits_of w))
        | And | Or | Xor ->
          let bop : Smt.Expr.binop =
            match op with And -> And | Or -> Or | _ -> Xor
          in
          let res = Binop (bop, a, b) in
          Set ("t_res", bits_of w, res)
          :: logic_flags w (Var ("t_res", bits_of w))
          @ write_operand w d (Var ("t_res", bits_of w))
        | Shl | Shr | Sar ->
          (* the CPU masks the amount to 6 bits for every width *)
          let amt = Binop (And, Zext (bits_of w, read_operand W8 s), int_ 0x3f (bits_of w)) in
          let bop : Smt.Expr.binop =
            match op with Shl -> Shl | Shr -> Lshr | _ -> Ashr
          in
          let res = Binop (bop, a, amt) in
          Set ("t_res", bits_of w, res)
          :: logic_flags w (Var ("t_res", bits_of w))
          @ write_operand w d (Var ("t_res", bits_of w))
        | Imul ->
          let res = Binop (Mul, a, b) in
          Set ("t_res", bits_of w, res)
          :: logic_flags w (Var ("t_res", bits_of w))
          @ write_operand w d (Var ("t_res", bits_of w)))
    | Not (w, o) -> write_operand w o (Unop (Not, read_operand w o))
    | Neg (w, o) ->
      let a = read_operand w o in
      let res = Unop (Neg, a) in
      Set ("t_res", bits_of w, res)
      :: sub_flags w (int_ 0 (bits_of w)) a (Var ("t_res", bits_of w))
      @ write_operand w o (Var ("t_res", bits_of w))
    | Mul (w, o) ->
      let a = read_operand w (Reg Isa.Reg.RAX) and b = read_operand w o in
      let lo = Binop (Mul, a, b) in
      let hi =
        if bits_of w = 64 then umulh a b
        else int_ 0 64
      in
      (* [hi] reads RAX (and possibly the operand), so it must be
         captured before the low half lands in RAX *)
      [ Set ("t_lo", bits_of w, lo);
        Set ("t_hi", 64, hi);
        Set (Isa.Reg.show Isa.Reg.RAX, 64, Zext (64, Var ("t_lo", bits_of w)));
        Set (Isa.Reg.show Isa.Reg.RDX, 64, Var ("t_hi", 64)) ]
    | Idiv (w, o) ->
      (* divide-by-zero becomes a fault, handled by the executor via
         the trace's signal events; here we lift the success path *)
      let a = read_operand w (Reg Isa.Reg.RAX) and d = read_operand w o in
      [ Set ("t_q", bits_of w, Binop (Sdiv, a, d));
        Set ("t_r", bits_of w, Binop (Srem, a, d));
        Set (Isa.Reg.show Isa.Reg.RAX, 64, Zext (64, Var ("t_q", bits_of w)));
        Set (Isa.Reg.show Isa.Reg.RDX, 64, Zext (64, Var ("t_r", bits_of w))) ]
    | Cmp (w, a, b) ->
      let va = read_operand w a and vb = read_operand w b in
      Set ("t_res", bits_of w, Binop (Sub, va, vb))
      :: sub_flags w va vb (Var ("t_res", bits_of w))
    | Test (w, a, b) ->
      let va = read_operand w a and vb = read_operand w b in
      Set ("t_res", bits_of w, Binop (And, va, vb))
      :: logic_flags w (Var ("t_res", bits_of w))
    | Jmp (Direct a) -> [ Jmp (i64 a) ]
    | Jmp (Indirect o) -> [ Jmp (read_operand W64 o) ]
    | Jcc (c, a) -> [ Cjmp (cond_exp c, a) ]
    | Call (Direct a) -> push_value (i64 next) @ [ Jmp (i64 a) ]
    | Call (Indirect o) ->
      (* read the target before rsp moves *)
      Set ("t_tgt", 64, read_operand W64 o)
      :: push_value (i64 next)
      @ [ Jmp (Var ("t_tgt", 64)) ]
    | Ret ->
      [ Set ("t_ret", 64, Load (rsp, 8));
        set_rsp (Binop (Add, rsp, i64 8L));
        Jmp (Var ("t_ret", 64)) ]
    | Push o ->
      Set ("t_push", 64, read_operand W64 o) :: push_value (Var ("t_push", 64))
    | Pop o ->
      [ Set ("t_pop", 64, Load (rsp, 8)); set_rsp (Binop (Add, rsp, i64 8L)) ]
      @ write_operand W64 o (Var ("t_pop", 64))
    | Setcc (c, o) ->
      write_operand W8 o (Ite (cond_exp c, int_ 1 8, int_ 0 8))
    | Cmovcc (c, d, s) ->
      [ Set (Isa.Reg.show d, 64,
             Ite (cond_exp c, read_operand W64 s, reg_var d)) ]
    | Syscall -> [ Syscall ]
    | Cvtsi2sd (x, o) ->
      [ Set (Isa.Reg.show_xmm x, 64, Fof_int (read_operand W64 o)) ]
    | Cvttsd2si (r, xs) ->
      [ Set (Isa.Reg.show r, 64, Fto_int (xsrc_exp xs)) ]
    | Movq_xr (x, o) ->
      [ Set (Isa.Reg.show_xmm x, 64, read_operand W64 o) ]
    | Movq_rx (o, x) -> write_operand W64 o (xmm_var x)
    | Movsd (x, xs) -> [ Set (Isa.Reg.show_xmm x, 64, xsrc_exp xs) ]
    | Movsd_store (m, x) -> [ Store (ea_exp m, 8, xmm_var x) ]
    | Farith (op, x, xs) ->
      let fop : Smt.Expr.fbinop =
        match op with
        | Addsd -> Fadd | Subsd -> Fsub | Mulsd -> Fmul | Divsd -> Fdiv
        | Sqrtsd -> Fadd (* unused; sqrt handled below *)
      in
      if op = Sqrtsd then
        [ Set (Isa.Reg.show_xmm x, 64, Fsqrt (xsrc_exp xs)) ]
      else
        [ Set (Isa.Reg.show_xmm x, 64, Fbin (fop, xmm_var x, xsrc_exp xs)) ]
    | Ucomisd (x, xs) ->
      let a = xmm_var x and b = xsrc_exp xs in
      let unord = or1 (not1 (Fcmp (Feq, a, a))) (not1 (Fcmp (Feq, b, b))) in
      [ Set ("t_unord", 1, unord);
        Set (flag_z, 1, or1 (Fcmp (Feq, a, b)) (Var ("t_unord", 1)));
        Set (flag_c, 1, or1 (Fcmp (Flt, a, b)) (Var ("t_unord", 1)));
        Set (flag_p, 1, Var ("t_unord", 1));
        Set (flag_o, 1, b0);
        Set (flag_s, 1, b0) ]
    | Nop -> []
    | Hlt -> [ Special "hlt" ]

(** Instrumented entry point: counts lifted instructions and those
    whose lifting degrades to [Special] (the Es1 failure mode —
    semantics the IR cannot model). *)
let lift features ~next insn : stmt list =
  (* charge the ambient budget meter (and run the unmodeled-insn chaos
     probe) before doing the work: a tripped lifted-insn cap must stop
     the cell here, at the paper's Es1 stage *)
  Robust.Meter.lift_tick ();
  let stmts = lift_insn features ~next insn in
  Telemetry.Metrics.incr m_insns_lifted;
  if List.exists (function Special _ -> true | _ -> false) stmts then
    Telemetry.Metrics.incr m_unmodeled;
  stmts
