(** Pin-style instruction tracing: run the concrete machine and record
    the event stream of the traced process.

    Like Pin, the tracer follows every *thread* of the target process
    but does not follow forked children — which is precisely why
    trace-based tools lose the data flow of the fork/pipe bomb.

    A trace is a handle over one of two backings: the in-memory event
    array (default — byte-identical to the historical behavior), or a
    seekable {!Store} file.  With a store directory configured
    ([TRACE_DIR] or {!set_store_dir}), {!record} becomes
    record-once/analyze-many: the store is keyed by a fingerprint of
    the image and machine configuration, and a hit replays the stored
    events with zero VM execution.  Consumers use the cursor API
    ({!get}, {!iteri}, {!seek}/{!next}, the indexed lookups) instead
    of touching a raw array. *)

module Store = Store

type backing =
  | Memory of Vm.Event.t array
  | Stored of Store.reader

type t = {
  backing : backing;
  checkpoints : Vm.Event.checkpoint array Lazy.t;
      (** replay checkpoints, ascending by [ck_events]; empty unless
          recording ran with a checkpoint interval (stores always do) *)
  result : Vm.Machine.run_result;
  argv_layout : (int64 * int) list;
      (** where the loader placed each argv string *)
  image : Asm.Image.t;
  config : Vm.Machine.config;
  truncated : bool;      (** the [max_events] cap cut the stream short *)
  store_path : string option;
  mutable taint_hint : Store.taint_hint option;
  mutable rc : Store.rcursor option;  (* cached sequential read cursor *)
}

let m_events = Telemetry.Metrics.counter "trace.events"
let m_truncated = Telemetry.Metrics.counter "trace.truncated"
let m_store_shed = Telemetry.Metrics.counter "trace.store.shed"

(** Store checkpoint cadence: every [n] root events.  Dense enough
    that a debugger window replays at most a few thousand events,
    sparse enough that checkpoint pages stay a small fraction of the
    frame bytes. *)
let default_checkpoint_interval = 2048

(* ------------------------------------------------------------------ *)
(* Store directory plumbing                                            *)
(* ------------------------------------------------------------------ *)

let store_dir : string option ref = ref (Sys.getenv_opt "TRACE_DIR")

(** Route {!record} through a store directory ([None] disables). *)
let set_store_dir d = store_dir := d

let current_store_dir () = !store_dir

let fingerprint ~max_events ~(config : Vm.Machine.config) image =
  Robust.Journal.fingerprint
    ([ "trace-store";
       string_of_int Store.format_version;
       string_of_int max_events;
       Asm.Image.to_bytes image ]
     @ config.argv
     @ List.concat_map (fun (p, d) -> [ p; d ]) config.files
     @ [ Int64.to_string config.now;
         config.web_content;
         Int64.to_string config.uid;
         Int64.to_string config.random_seed;
         string_of_int config.fuel;
         string_of_int config.quantum ])

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let event_pid (ev : Vm.Event.t) =
  match ev with
  | Vm.Event.Exec e -> e.pid
  | Vm.Event.Sys s -> s.pid
  | Vm.Event.Signal s -> s.pid

let record_fresh ~max_events ~interval ~writer ~(config : Vm.Machine.config)
    image : t =
  let machine = Vm.Machine.create ~config image in
  let events = ref [] in
  let cks = ref [] in
  let n = ref 0 in
  let truncated = ref false in
  Vm.Machine.set_hook machine (fun ev ->
      if event_pid ev = 1 then
        if !n < max_events then begin
          events := ev :: !events;
          (match writer with Some w -> Store.add_event w ev | None -> ());
          incr n
        end
        else if not !truncated then begin
          truncated := true;
          Telemetry.Metrics.incr m_truncated;
          Telemetry.Log.warnf
            "trace truncated at %d events (max_events); analyses see a \
             capped prefix of the execution"
            max_events
        end);
  (match interval with
   | None -> ()
   | Some iv ->
     Vm.Machine.set_checkpoint_hook machine ~interval:iv (fun ck ->
         (* past the cap the event stream stops, so checkpoints
            describing later state would dangle — drop them too *)
         if not !truncated then begin
           cks := ck :: !cks;
           match writer with
           | Some w -> Store.add_checkpoint w ck
           | None -> ()
         end));
  let result = Vm.Machine.run machine in
  Telemetry.Metrics.add m_events !n;
  let argv_layout = machine.Vm.Machine.argv_layout in
  let store_path =
    match writer with
    | None -> None
    | Some w -> (
        match
          Store.finish w
            { Store.s_result = result; s_argv_layout = argv_layout;
              s_truncated = !truncated }
        with
        | () -> Some w.Store.w_path
        | exception Sys_error msg ->
          Telemetry.Log.warnf "trace store write failed: %s" msg;
          None
        | exception Robust.Diskio.Full msg ->
          (* ENOSPC degradation: the trace itself is intact in memory
             — keep the Memory backing, skip the cache file *)
          Telemetry.Metrics.incr m_store_shed;
          Telemetry.Log.warnf
            "trace store write failed: %s; falling back to memory backing"
            msg;
          None)
  in
  { backing = Memory (Array.of_list (List.rev !events));
    checkpoints = Lazy.from_val (Array.of_list (List.rev !cks));
    result; argv_layout; image; config;
    truncated = !truncated;
    store_path;
    taint_hint = None;
    rc = None }

let open_stored ~(config : Vm.Machine.config) image path fp : t =
  let r = Store.open_file path in
  if not (String.equal (Store.fingerprint r) fp) then
    raise (Store.Corrupt "fingerprint mismatch");
  let meta = Store.meta r in
  Telemetry.Metrics.add m_events (Store.event_count r);
  if meta.Store.s_truncated then Telemetry.Metrics.incr m_truncated;
  { backing = Stored r;
    checkpoints =
      lazy
        (Array.map (fun (_, off) -> Store.checkpoint_at r off)
           (Store.checkpoints r));
    result = meta.Store.s_result;
    argv_layout = meta.Store.s_argv_layout;
    image; config;
    truncated = meta.Store.s_truncated;
    store_path = Some path;
    taint_hint = Store.taint r;
    rc = None }

(** Record a trace of the root process (its threads included).

    With a store directory configured, the trace is transparently
    cached: a fingerprint hit opens the stored file instead of running
    the VM at all; a miss records, writes the store and returns the
    fresh trace.  A store that fails validation is warned about,
    counted in [trace.store.corrupt] and re-recorded — corruption
    costs a re-run, never a wrong trace. *)
let record ?(max_events = 3_000_000) ?checkpoint_interval
    ~(config : Vm.Machine.config) image : t =
  Telemetry.with_span "trace.record" @@ fun () ->
  match !store_dir with
  | None ->
    record_fresh ~max_events ~interval:checkpoint_interval ~writer:None
      ~config image
  | Some dir ->
    let fp = fingerprint ~max_events ~config image in
    let path = Filename.concat dir (Printf.sprintf "trace-%s.btrc" fp) in
    let interval =
      Some
        (match checkpoint_interval with
         | Some iv -> iv
         | None -> default_checkpoint_interval)
    in
    let fresh () =
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
       with Sys_error _ -> ());
      let writer = Store.create_writer ~fingerprint:fp ~path in
      record_fresh ~max_events ~interval ~writer:(Some writer) ~config image
    in
    if Sys.file_exists path then
      match open_stored ~config image path fp with
      | t -> t
      | exception Store.Corrupt msg ->
        Telemetry.Metrics.incr Store.m_corrupt;
        Telemetry.Log.warnf "trace store %s rejected (%s); re-recording"
          path msg;
        fresh ()
    else fresh ()

(* ------------------------------------------------------------------ *)
(* Cursor API                                                          *)
(* ------------------------------------------------------------------ *)

let length t =
  match t.backing with
  | Memory evs -> Array.length evs
  | Stored r -> Store.event_count r

let store_backed t = t.store_path <> None

(** Event at sequence [i].  Sequential access over a store reuses one
    decode cursor; random access restarts from the nearest keyframe. *)
let get t i =
  match t.backing with
  | Memory evs -> evs.(i)
  | Stored r ->
    let rc =
      match t.rc with
      | Some rc when Store.rcursor_seq rc = i -> rc
      | _ -> Store.cursor_at r i
    in
    t.rc <- Some rc;
    (match Store.read_next rc with
     | Some ev -> ev
     | None -> invalid_arg (Printf.sprintf "Trace.get %d (of %d)" i (length t)))

(** [iteri ?from ?upto t f] — [f i ev] over the window
    [\[from, upto)], default the whole trace. *)
let iteri ?(from = 0) ?upto t f =
  let upto = match upto with Some u -> u | None -> length t in
  match t.backing with
  | Memory evs ->
    for i = from to min upto (Array.length evs) - 1 do
      f i evs.(i)
    done
  | Stored r ->
    if from < upto then begin
      let rc = Store.cursor_at r from in
      (try
         for i = from to upto - 1 do
           match Store.read_next rc with
           | Some ev -> f i ev
           | None -> raise Exit
         done
       with Exit -> ());
      t.rc <- Some rc
    end

let exec_count t =
  match t.backing with
  | Memory evs ->
    Array.fold_left
      (fun acc ev -> match ev with Vm.Event.Exec _ -> acc + 1 | _ -> acc)
      0 evs
  | Stored r -> Store.exec_count r

(** Executed instructions restricted to a thread — an index walk on a
    store, a single pass in memory (never a whole-stream copy). *)
let execs_of_tid t tid =
  match t.backing with
  | Memory evs ->
    Array.fold_right
      (fun ev acc ->
         match ev with
         | Vm.Event.Exec e when e.tid = tid -> e :: acc
         | _ -> acc)
      evs []
  | Stored r ->
    Store.tid_seqs r tid
    |> Array.to_list
    |> List.map (fun seq ->
        match get t seq with
        | Vm.Event.Exec e -> e
        | _ -> raise (Store.Corrupt "tid index points at a non-exec event"))

(** The (address, length) byte region of argv.(i), NUL included.
    Total: [None] when argv has fewer than [i+1] entries. *)
let argv_region t i =
  if i < 0 then None else List.nth_opt t.argv_layout i

(* --- stateful cursor (the debugger's position) --- *)

type cursor = { c_trace : t; mutable c_pos : int }

let cursor ?(at = 0) t = { c_trace = t; c_pos = max 0 (min at (length t)) }
let pos c = c.c_pos
let seek c i = c.c_pos <- max 0 (min i (length c.c_trace))

(** Event at the cursor, advancing past it; [None] at end of trace. *)
let next c =
  if c.c_pos >= length c.c_trace then None
  else begin
    let ev = get c.c_trace c.c_pos in
    c.c_pos <- c.c_pos + 1;
    Some ev
  end

(** Event at the cursor without advancing. *)
let peek c =
  if c.c_pos >= length c.c_trace then None else Some (get c.c_trace c.c_pos)

(* --- indexed lookups --- *)

(** First exec event at instruction address [pc] with seq >= [from]. *)
let next_exec_at t ~from pc =
  match t.backing with
  | Stored r ->
    let seqs = Store.pc_seqs r pc in
    let n = Array.length seqs in
    let rec go i =
      if i >= n then None else if seqs.(i) >= from then Some seqs.(i)
      else go (i + 1)
    in
    go 0
  | Memory evs ->
    let n = Array.length evs in
    let rec go i =
      if i >= n then None
      else
        match evs.(i) with
        | Vm.Event.Exec e when Int64.equal e.pc pc -> Some i
        | _ -> go (i + 1)
    in
    go (max 0 from)

(** First syscall event named [name] with seq >= [from]. *)
let next_syscall t ~from name =
  match t.backing with
  | Stored r ->
    let seqs = Store.sys_seqs r name in
    let n = Array.length seqs in
    let rec go i =
      if i >= n then None else if seqs.(i) >= from then Some seqs.(i)
      else go (i + 1)
    in
    go 0
  | Memory evs ->
    let n = Array.length evs in
    let rec go i =
      if i >= n then None
      else
        match evs.(i) with
        | Vm.Event.Sys { record; _ } when String.equal record.name name ->
          Some i
        | _ -> go (i + 1)
    in
    go (max 0 from)

(* ------------------------------------------------------------------ *)
(* Checkpoints and state reconstruction                                *)
(* ------------------------------------------------------------------ *)

let checkpoints t = Lazy.force t.checkpoints

(** Latest checkpoint describing state at or before event [pos]. *)
let nearest_checkpoint t pos =
  Array.fold_left
    (fun best (ck : Vm.Event.checkpoint) ->
       if ck.ck_events <= pos then Some ck else best)
    None (checkpoints t)

(** Reconstruct the traced process's memory as it was immediately
    before event [pos]: start from the fresh image, apply the
    cumulative page deltas of every checkpoint up to the nearest one,
    then replay the remaining event window.

    The window replay is idempotent — each exec event first restores
    its recorded memory-read pre-images, and a signal's resume push is
    skipped when the checkpoint already contains it — so a checkpoint
    that landed between an exec and its paired Sys/Signal event still
    reconstructs exactly.  Returns the memory and the [ck_events] of
    the checkpoint used (0 = replayed from the start). *)
let mem_before ?(use_checkpoints = true) t pos =
  let mem, _rsp, _layout =
    Vm.Machine.fresh_memory ~config:t.config t.image
  in
  let base =
    if not use_checkpoints then 0
    else begin
      let applied = ref 0 in
      Array.iter
        (fun (ck : Vm.Event.checkpoint) ->
           if ck.ck_events <= pos then begin
             List.iter
               (fun (addr, data) -> Vm.Mem.write_bytes mem addr data)
               ck.ck_pages;
             applied := ck.ck_events
           end)
        (checkpoints t);
      !applied
    end
  in
  let scratch = Vm.Cpu.create () in
  let saw_exec = ref false in
  let last_rsp = ref 0L in
  iteri ~from:base ~upto:pos t (fun _ ev ->
      match ev with
      | Vm.Event.Exec e ->
        saw_exec := true;
        last_rsp := e.regs_before.(Isa.Reg.index Isa.Reg.RSP);
        (* pre-image restore makes read-modify-write replay idempotent
           across the checkpoint boundary *)
        List.iter
          (fun (a, data) -> Vm.Mem.write_bytes mem a data)
          e.mem_reads;
        Array.blit e.regs_before 0 scratch.Vm.Cpu.regs 0 Isa.Reg.count;
        Array.blit e.xmm_before 0 scratch.Vm.Cpu.xmm 0 Isa.Reg.xmm_count;
        Vm.Cpu.unpack_flags scratch e.flags_before;
        scratch.Vm.Cpu.pc <- e.pc;
        let size = String.length (Isa.Codec.encode e.insn) in
        let next_pc = Int64.add e.pc (Int64.of_int size) in
        (match Vm.Cpu.execute scratch mem ~next_pc e.insn with _ -> ())
      | Vm.Event.Sys { record; _ } ->
        List.iter
          (fun eff ->
             match eff with
             | Vm.Event.Eff_read { addr; data; _ } ->
               Vm.Mem.write_bytes mem addr data
             | Vm.Event.Eff_write _ | Vm.Event.Eff_spawn _ -> ())
          record.effects
      | Vm.Event.Signal { resume; _ } ->
        (* no exec yet in this window means the checkpoint fired after
           the faulting exec: its memory already holds the push *)
        if !saw_exec then begin
          let slot = Int64.sub !last_rsp 8L in
          Vm.Mem.write mem slot 8 resume
        end);
  (mem, base)

(* ------------------------------------------------------------------ *)
(* Taint hint                                                          *)
(* ------------------------------------------------------------------ *)

let taint_hint t = t.taint_hint

(** Attach a taint summary; persisted into the store file when the
    trace is store-backed so later opens (and the debugger's
    [run-to taint]) get it for free. *)
let save_taint_hint t (h : Store.taint_hint) =
  t.taint_hint <- Some h;
  match t.store_path with
  | None -> ()
  | Some path -> (
      try Store.save_taint ~path h
      with Store.Corrupt _ | Sys_error _ | Robust.Diskio.Full _ -> ())

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_event ppf (ev : Vm.Event.t) =
  match ev with
  | Exec e ->
    Fmt.pf ppf "[%d.%d] %Lx: %s" e.pid e.tid e.pc (Isa.Pp.to_string e.insn)
  | Sys s -> Fmt.pf ppf "[%d.%d] syscall %s -> %Ld" s.pid s.tid s.record.name
               s.record.ret
  | Signal s -> Fmt.pf ppf "[%d.%d] signal %d -> %Lx" s.pid s.tid s.signum
                  s.handler
