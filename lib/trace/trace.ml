(** Pin-style instruction tracing: run the concrete machine and record
    the event stream of the traced process.

    Like Pin, the tracer follows every *thread* of the target process
    but does not follow forked children — which is precisely why
    trace-based tools lose the data flow of the fork/pipe bomb. *)

type t = {
  events : Vm.Event.t array;
  result : Vm.Machine.run_result;
  argv_layout : (int64 * int) list;
      (** where the loader placed each argv string *)
  image : Asm.Image.t;
  config : Vm.Machine.config;
}

let m_events = Telemetry.Metrics.counter "trace.events"

(** Record a trace of the root process (its threads included). *)
let record ?(max_events = 3_000_000) ~(config : Vm.Machine.config) image : t =
  Telemetry.with_span "trace.record" @@ fun () ->
  let machine = Vm.Machine.create ~config image in
  let events = ref [] in
  let n = ref 0 in
  Vm.Machine.set_hook machine (fun ev ->
      let pid =
        match ev with
        | Vm.Event.Exec e -> e.pid
        | Vm.Event.Sys s -> s.pid
        | Vm.Event.Signal s -> s.pid
      in
      if pid = 1 && !n < max_events then begin
        events := ev :: !events;
        incr n
      end);
  let result = Vm.Machine.run machine in
  Telemetry.Metrics.add m_events !n;
  { events = Array.of_list (List.rev !events);
    result;
    argv_layout = machine.argv_layout;
    image;
    config }

(** The (address, length) byte region of argv.(i), NUL included. *)
let argv_region t i = List.nth t.argv_layout i

let exec_count t =
  Array.fold_left
    (fun acc ev -> match ev with Vm.Event.Exec _ -> acc + 1 | _ -> acc)
    0 t.events

(** Executed instructions restricted to a thread. *)
let execs_of_tid t tid =
  Array.to_list t.events
  |> List.filter_map (function
      | Vm.Event.Exec e when e.tid = tid -> Some e
      | _ -> None)

let pp_event ppf (ev : Vm.Event.t) =
  match ev with
  | Exec e ->
    Fmt.pf ppf "[%d.%d] %Lx: %s" e.pid e.tid e.pc (Isa.Pp.to_string e.insn)
  | Sys s -> Fmt.pf ppf "[%d.%d] syscall %s -> %Ld" s.pid s.tid s.record.name
               s.record.ret
  | Signal s -> Fmt.pf ppf "[%d.%d] signal %d -> %Lx" s.pid s.tid s.signum
                  s.handler
