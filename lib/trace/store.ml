(** Seekable binary trace store: compact framed encoding of
    {!Vm.Event.t} streams with periodic machine checkpoints and an
    in-file index, so consumers seek instead of re-executing the VM.

    File layout:

    {v
    "BTRC\x01"  <fingerprint:str>          header
    frame*                                 event + checkpoint frames
    frame                                  meta (result, argv layout)
    frame                                  index (samples, postings)
    frame?                                 taint hint (appended later)
    meta_off index_off taint_off fnv64 "BTRCEND\n"   40-byte trailer
    v}

    Every frame is [<varint paylen> <payload> <fix64 FNV-1a-64>] — the
    same checksum family as the write-ahead journal — so torn and
    bit-flipped files are detected at open, never trusted.  Event
    payloads use varint/zigzag coding with pc/register deltas against
    the previous exec frame; every {!keyframe_interval}-th exec frame
    is encoded in full and listed in the sample table, giving seeks a
    nearby self-contained restart point.  Checkpoint frames carry CPU
    snapshots plus memory page deltas and never consume an event
    sequence number, so stored traces stay index-compatible with the
    in-memory event array. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let format_version = 1
let magic = "BTRC\x01"
let trailer_magic = "BTRCEND\n"
let trailer_size = 40
let keyframe_interval = 64

(* store telemetry: the evaluation layer reads these back to prove a
   replayed cell did no VM work *)
let m_written = Telemetry.Metrics.counter "trace.store.written"
let m_opened = Telemetry.Metrics.counter "trace.store.opened"
let m_corrupt = Telemetry.Metrics.counter "trace.store.corrupt"
let m_bytes = Telemetry.Metrics.counter "trace.store.bytes"
let m_frames = Telemetry.Metrics.counter "trace.store.frames"
let m_checkpoints = Telemetry.Metrics.counter "trace.store.checkpoints"

(* ------------------------------------------------------------------ *)
(* Primitive codec: LEB128 varints, zigzag, length-prefixed strings    *)
(* ------------------------------------------------------------------ *)

let put_u64 b (v : int64) =
  let v = ref v in
  let fin = ref false in
  while not !fin do
    let byte = Int64.to_int (Int64.logand !v 0x7fL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char b (Char.chr byte);
      fin := true
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let put_uint b n =
  if n < 0 then invalid_arg "Store.put_uint: negative";
  put_u64 b (Int64.of_int n)

let zigzag v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag z =
  Int64.logxor (Int64.shift_right_logical z 1)
    (Int64.neg (Int64.logand z 1L))

let put_s64 b v = put_u64 b (zigzag v)
let put_sint b n = put_s64 b (Int64.of_int n)

let put_str b s =
  put_uint b (String.length s);
  Buffer.add_string b s

let put_fix64 b (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

type cursor = { src : string; mutable pos : int }

let get_u8 c =
  if c.pos >= String.length c.src then corrupt "truncated at byte %d" c.pos;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u64 c : int64 =
  let v = ref 0L in
  let shift = ref 0 in
  let fin = ref false in
  while not !fin do
    if !shift > 63 then corrupt "overlong varint at byte %d" c.pos;
    let byte = get_u8 c in
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte land 0x7f)) !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then fin := true
  done;
  !v

let get_uint c =
  let v = get_u64 c in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    corrupt "uint out of range at byte %d" c.pos;
  Int64.to_int v

let get_s64 c = unzigzag (get_u64 c)
let get_sint c = Int64.to_int (get_s64 c)

let get_raw c n =
  if n < 0 || c.pos + n > String.length c.src then
    corrupt "truncated string at byte %d" c.pos;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_str c = get_raw c (get_uint c)

let get_fix64 c : int64 =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 c)) (8 * i))
  done;
  !v

(* ------------------------------------------------------------------ *)
(* Instruction codec                                                   *)
(* ------------------------------------------------------------------ *)

(* The ISA codec is the compact path; it is verified to round-trip at
   write time (structural equality), with a Marshal fallback so an
   instruction the codec cannot reproduce still stores faithfully. *)
let put_insn b (i : Isa.Insn.t) =
  let verified =
    match Isa.Codec.encode i with
    | enc -> (
        match Isa.Codec.decode enc 0 with
        | i', sz when sz = String.length enc && Isa.Insn.equal i i' -> Some enc
        | _ -> None
        | exception _ -> None)
    | exception _ -> None
  in
  match verified with
  | Some enc ->
    Buffer.add_char b '\000';
    put_str b enc
  | None ->
    Buffer.add_char b '\001';
    put_str b (Marshal.to_string i [])

let get_insn c : Isa.Insn.t =
  match get_u8 c with
  | 0 -> (
      let enc = get_str c in
      match Isa.Codec.decode enc 0 with
      | i, _ -> i
      | exception _ -> corrupt "undecodable instruction at byte %d" c.pos)
  | 1 -> (
      let s = get_str c in
      try (Marshal.from_string s 0 : Isa.Insn.t)
      with _ -> corrupt "unmarshalable instruction at byte %d" c.pos)
  | t -> corrupt "unknown instruction tag %d" t

(* ------------------------------------------------------------------ *)
(* Delta context                                                       *)
(* ------------------------------------------------------------------ *)

(* Exec frames are delta-coded against the previous exec frame; a
   fresh context (all zeros) is the state at every keyframe restart. *)
type dctx = {
  mutable prev_pc : int64;
  prev_regs : int64 array;
  prev_xmm : int64 array;  (* float bits *)
}

let fresh_dctx () =
  { prev_pc = 0L;
    prev_regs = Array.make Isa.Reg.count 0L;
    prev_xmm = Array.make Isa.Reg.xmm_count 0L }

let update_dctx d (e : Vm.Event.exec) =
  d.prev_pc <- e.pc;
  Array.blit e.regs_before 0 d.prev_regs 0 Isa.Reg.count;
  for i = 0 to Isa.Reg.xmm_count - 1 do
    d.prev_xmm.(i) <- Int64.bits_of_float e.xmm_before.(i)
  done

(* ------------------------------------------------------------------ *)
(* Event payloads                                                      *)
(* ------------------------------------------------------------------ *)

let tag_exec_full = 0
let tag_exec_delta = 1
let tag_sys = 2
let tag_signal = 3
let tag_checkpoint = 4

let put_exec b d ~full (e : Vm.Event.exec) =
  Buffer.add_char b (Char.chr (if full then tag_exec_full else tag_exec_delta));
  put_uint b e.pid;
  put_uint b e.tid;
  if full then put_u64 b e.pc else put_s64 b (Int64.sub e.pc d.prev_pc);
  put_insn b e.insn;
  put_s64 b (Int64.sub e.next_pc e.pc);
  put_uint b e.flags_before;
  put_uint b (List.length e.ea);
  List.iter (fun a -> put_s64 b (Int64.sub a e.pc)) e.ea;
  put_uint b (List.length e.mem_reads);
  List.iter
    (fun (a, data) ->
       put_s64 b (Int64.sub a e.pc);
       put_str b data)
    e.mem_reads;
  if full then
    Array.iter (fun r -> put_u64 b r) e.regs_before
  else begin
    let mask = ref 0 in
    for i = 0 to Isa.Reg.count - 1 do
      if not (Int64.equal e.regs_before.(i) d.prev_regs.(i)) then
        mask := !mask lor (1 lsl i)
    done;
    put_uint b !mask;
    for i = 0 to Isa.Reg.count - 1 do
      if !mask land (1 lsl i) <> 0 then
        put_s64 b (Int64.sub e.regs_before.(i) d.prev_regs.(i))
    done
  end;
  if full then
    Array.iter (fun x -> put_fix64 b (Int64.bits_of_float x)) e.xmm_before
  else begin
    let mask = ref 0 in
    for i = 0 to Isa.Reg.xmm_count - 1 do
      if not (Int64.equal (Int64.bits_of_float e.xmm_before.(i)) d.prev_xmm.(i))
      then mask := !mask lor (1 lsl i)
    done;
    put_uint b !mask;
    for i = 0 to Isa.Reg.xmm_count - 1 do
      if !mask land (1 lsl i) <> 0 then
        put_fix64 b (Int64.bits_of_float e.xmm_before.(i))
    done
  end;
  update_dctx d e

let get_exec c d ~full : Vm.Event.exec =
  let pid = get_uint c in
  let tid = get_uint c in
  let pc = if full then get_u64 c else Int64.add d.prev_pc (get_s64 c) in
  let insn = get_insn c in
  let next_pc = Int64.add pc (get_s64 c) in
  let flags_before = get_uint c in
  let n_ea = get_uint c in
  let ea = List.init n_ea (fun _ -> Int64.add pc (get_s64 c)) in
  let n_mr = get_uint c in
  let mem_reads =
    List.init n_mr (fun _ ->
        let a = Int64.add pc (get_s64 c) in
        let data = get_str c in
        (a, data))
  in
  let regs_before =
    if full then Array.init Isa.Reg.count (fun _ -> get_u64 c)
    else begin
      let mask = get_uint c in
      Array.init Isa.Reg.count (fun i ->
          if mask land (1 lsl i) <> 0 then Int64.add d.prev_regs.(i) (get_s64 c)
          else d.prev_regs.(i))
    end
  in
  let xmm_before =
    if full then
      Array.init Isa.Reg.xmm_count (fun _ -> Int64.float_of_bits (get_fix64 c))
    else begin
      let mask = get_uint c in
      Array.init Isa.Reg.xmm_count (fun i ->
          if mask land (1 lsl i) <> 0 then Int64.float_of_bits (get_fix64 c)
          else Int64.float_of_bits d.prev_xmm.(i))
    end
  in
  let e : Vm.Event.exec =
    { pid; tid; pc; insn; next_pc; ea; mem_reads; regs_before; xmm_before;
      flags_before }
  in
  update_dctx d e;
  e

let put_effect b (eff : Vm.Event.sys_effect) =
  match eff with
  | Eff_read { obj; off; addr; len; data } ->
    Buffer.add_char b '\000';
    put_uint b obj; put_uint b off; put_u64 b addr; put_uint b len;
    put_str b data
  | Eff_write { obj; off; addr; len } ->
    Buffer.add_char b '\001';
    put_uint b obj; put_uint b off; put_u64 b addr; put_uint b len
  | Eff_spawn id ->
    Buffer.add_char b '\002';
    put_uint b id

let get_effect c : Vm.Event.sys_effect =
  match get_u8 c with
  | 0 ->
    let obj = get_uint c in
    let off = get_uint c in
    let addr = get_u64 c in
    let len = get_uint c in
    let data = get_str c in
    Eff_read { obj; off; addr; len; data }
  | 1 ->
    let obj = get_uint c in
    let off = get_uint c in
    let addr = get_u64 c in
    let len = get_uint c in
    Eff_write { obj; off; addr; len }
  | 2 -> Eff_spawn (get_uint c)
  | t -> corrupt "unknown effect tag %d" t

let put_sys b ~pid ~tid (r : Vm.Event.sys_record) =
  Buffer.add_char b (Char.chr tag_sys);
  put_uint b pid;
  put_uint b tid;
  put_s64 b r.nr;
  put_str b r.name;
  Array.iter (fun a -> put_s64 b a) r.args;
  put_s64 b r.ret;
  put_uint b (List.length r.effects);
  List.iter (put_effect b) r.effects

let get_sys c : Vm.Event.t =
  let pid = get_uint c in
  let tid = get_uint c in
  let nr = get_s64 c in
  let name = get_str c in
  let args = Array.init 6 (fun _ -> get_s64 c) in
  let ret = get_s64 c in
  let n = get_uint c in
  let effects = List.init n (fun _ -> get_effect c) in
  Sys { pid; tid; record = { nr; name; args; ret; effects } }

let put_signal b ~pid ~tid ~signum ~handler ~resume =
  Buffer.add_char b (Char.chr tag_signal);
  put_uint b pid;
  put_uint b tid;
  put_uint b signum;
  put_u64 b handler;
  put_u64 b resume

let get_signal c : Vm.Event.t =
  let pid = get_uint c in
  let tid = get_uint c in
  let signum = get_uint c in
  let handler = get_u64 c in
  let resume = get_u64 c in
  Signal { pid; tid; signum; handler; resume }

let put_checkpoint b (ck : Vm.Event.checkpoint) =
  Buffer.add_char b (Char.chr tag_checkpoint);
  put_uint b ck.ck_events;
  put_uint b (List.length ck.ck_tasks);
  List.iter
    (fun (ts : Vm.Event.task_snap) ->
       put_uint b ts.ck_pid;
       put_uint b ts.ck_tid;
       put_u64 b ts.ck_pc;
       Array.iter (fun r -> put_fix64 b r) ts.ck_regs;
       Array.iter (fun x -> put_fix64 b (Int64.bits_of_float x)) ts.ck_xmm;
       put_uint b ts.ck_flags)
    ck.ck_tasks;
  put_uint b (List.length ck.ck_pages);
  List.iter
    (fun (addr, data) ->
       put_u64 b addr;
       put_str b data)
    ck.ck_pages

let get_checkpoint c : Vm.Event.checkpoint =
  let ck_events = get_uint c in
  let n_tasks = get_uint c in
  let ck_tasks =
    List.init n_tasks (fun _ ->
        let ck_pid = get_uint c in
        let ck_tid = get_uint c in
        let ck_pc = get_u64 c in
        let ck_regs = Array.init Isa.Reg.count (fun _ -> get_fix64 c) in
        let ck_xmm =
          Array.init Isa.Reg.xmm_count (fun _ ->
              Int64.float_of_bits (get_fix64 c))
        in
        let ck_flags = get_uint c in
        { Vm.Event.ck_pid; ck_tid; ck_pc; ck_regs; ck_xmm; ck_flags })
  in
  let n_pages = get_uint c in
  let ck_pages =
    List.init n_pages (fun _ ->
        let addr = get_u64 c in
        let data = get_str c in
        (addr, data))
  in
  { Vm.Event.ck_events; ck_tasks; ck_pages }

type decoded = D_event of Vm.Event.t | D_checkpoint of Vm.Event.checkpoint

let decode_payload d (payload : string) : decoded =
  let c = { src = payload; pos = 0 } in
  match get_u8 c with
  | t when t = tag_exec_full -> D_event (Exec (get_exec c d ~full:true))
  | t when t = tag_exec_delta -> D_event (Exec (get_exec c d ~full:false))
  | t when t = tag_sys -> D_event (get_sys c)
  | t when t = tag_signal -> D_event (get_signal c)
  | t when t = tag_checkpoint -> D_checkpoint (get_checkpoint c)
  | t -> corrupt "unknown frame tag %d" t

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let add_frame buf payload =
  put_uint buf (String.length payload);
  Buffer.add_string buf payload;
  put_fix64 buf (Robust.Journal.fnv64 payload)

(** Read the frame at [off]: payload plus the offset just past it.
    The per-frame checksum is always verified. *)
let read_frame (raw : string) ~limit off : string * int =
  if off >= limit then corrupt "frame offset %d past section end %d" off limit;
  let c = { src = raw; pos = off } in
  let len = get_uint c in
  if c.pos + len + 8 > limit then corrupt "torn frame at byte %d" off;
  let payload = get_raw c len in
  let sum = get_fix64 c in
  if not (Int64.equal sum (Robust.Journal.fnv64 payload)) then
    corrupt "frame checksum mismatch at byte %d" off;
  (payload, c.pos)

(* ------------------------------------------------------------------ *)
(* Meta and taint payloads                                             *)
(* ------------------------------------------------------------------ *)

type meta = {
  s_result : Vm.Machine.run_result;
  s_argv_layout : (int64 * int) list;
  s_truncated : bool;
}

let encode_meta (m : meta) =
  let b = Buffer.create 256 in
  let r = m.s_result in
  (match r.exit_code with
   | None -> Buffer.add_char b '\000'
   | Some c ->
     Buffer.add_char b '\001';
     put_sint b c);
  put_str b r.stdout;
  put_str b r.stderr;
  put_uint b r.steps;
  (match r.fault with
   | None -> Buffer.add_char b '\000'
   | Some Vm.Machine.Div_by_zero -> Buffer.add_char b '\001'
   | Some (Vm.Machine.Bad_decode msg) ->
     Buffer.add_char b '\002';
     put_str b msg);
  Buffer.add_char b (if r.fuel_exhausted then '\001' else '\000');
  Buffer.add_char b (if r.deadlocked then '\001' else '\000');
  put_uint b (List.length m.s_argv_layout);
  List.iter
    (fun (addr, len) ->
       put_u64 b addr;
       put_uint b len)
    m.s_argv_layout;
  Buffer.add_char b (if m.s_truncated then '\001' else '\000');
  Buffer.contents b

let decode_meta (payload : string) : meta =
  let c = { src = payload; pos = 0 } in
  let exit_code =
    match get_u8 c with
    | 0 -> None
    | 1 -> Some (get_sint c)
    | t -> corrupt "meta exit tag %d" t
  in
  let stdout = get_str c in
  let stderr = get_str c in
  let steps = get_uint c in
  let fault =
    match get_u8 c with
    | 0 -> None
    | 1 -> Some Vm.Machine.Div_by_zero
    | 2 -> Some (Vm.Machine.Bad_decode (get_str c))
    | t -> corrupt "meta fault tag %d" t
  in
  let fuel_exhausted = get_u8 c <> 0 in
  let deadlocked = get_u8 c <> 0 in
  let n = get_uint c in
  let s_argv_layout =
    List.init n (fun _ ->
        let addr = get_u64 c in
        let len = get_uint c in
        (addr, len))
  in
  let s_truncated = get_u8 c <> 0 in
  { s_result =
      { exit_code; stdout; stderr; steps; fault; fuel_exhausted; deadlocked };
    s_argv_layout;
    s_truncated }

(** Post-hoc taint summary, appended once an analysis has run so later
    sessions (and [run-to taint] in the debugger) can seek the first
    tainted event without re-analyzing. *)
type taint_hint = {
  th_first : int;                 (** seq of first tainted exec; -1 = none *)
  th_tainted : int array;         (** seqs of tainted exec events, sorted *)
  th_branches : (int * bool) array;  (** (seq, direction) of tainted Jcc *)
}

let put_deltas b (seqs : int array) =
  put_uint b (Array.length seqs);
  let prev = ref 0 in
  Array.iter
    (fun s ->
       put_uint b (s - !prev);
       prev := s)
    seqs

let get_deltas c : int array =
  let n = get_uint c in
  let prev = ref 0 in
  Array.init n (fun _ ->
      let s = !prev + get_uint c in
      prev := s;
      s)

let encode_taint (h : taint_hint) =
  let b = Buffer.create 128 in
  put_sint b h.th_first;
  put_deltas b h.th_tainted;
  put_uint b (Array.length h.th_branches);
  let prev = ref 0 in
  Array.iter
    (fun (s, taken) ->
       put_uint b (s - !prev);
       prev := s;
       Buffer.add_char b (if taken then '\001' else '\000'))
    h.th_branches;
  Buffer.contents b

let decode_taint (payload : string) : taint_hint =
  let c = { src = payload; pos = 0 } in
  let th_first = get_sint c in
  let th_tainted = get_deltas c in
  let n = get_uint c in
  let prev = ref 0 in
  let th_branches =
    Array.init n (fun _ ->
        let s = !prev + get_uint c in
        prev := s;
        let taken = get_u8 c <> 0 in
        (s, taken))
  in
  { th_first; th_tainted; th_branches }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  w_buf : Buffer.t;
  w_path : string;
  w_scratch : Buffer.t;
  w_dctx : dctx;
  mutable w_events : int;
  mutable w_frames : int;
  mutable w_ck : int;
  mutable w_execs_since_key : int;   (* 0 = next exec is a keyframe *)
  mutable w_samples : (int * int) list;      (* (seq, offset), newest first *)
  mutable w_checkpoints : (int * int) list;  (* (ck_events, offset) *)
  w_pc_post : (int64, int list ref) Hashtbl.t;
  w_sys_post : (string, int list ref) Hashtbl.t;
  w_tid_post : (int, int list ref) Hashtbl.t;
}

let create_writer ~fingerprint ~path : writer =
  let w_buf = Buffer.create 65536 in
  Buffer.add_string w_buf magic;
  let hdr = Buffer.create 32 in
  put_str hdr fingerprint;
  Buffer.add_buffer w_buf hdr;
  { w_buf; w_path = path;
    w_scratch = Buffer.create 512;
    w_dctx = fresh_dctx ();
    w_events = 0; w_frames = 0; w_ck = 0;
    w_execs_since_key = 0;
    w_samples = []; w_checkpoints = [];
    w_pc_post = Hashtbl.create 256;
    w_sys_post = Hashtbl.create 16;
    w_tid_post = Hashtbl.create 4 }

let posting tbl key seq =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := seq :: !l
  | None -> Hashtbl.replace tbl key (ref [ seq ])

let flush_scratch w =
  add_frame w.w_buf (Buffer.contents w.w_scratch);
  Buffer.clear w.w_scratch;
  w.w_frames <- w.w_frames + 1

let add_event w (ev : Vm.Event.t) =
  (* cooperative budget poll, amortized over the write stream *)
  if w.w_events land 0xFFF = 0 then Robust.Meter.checkpoint_ambient ();
  let seq = w.w_events in
  (match ev with
   | Exec e ->
     let full = w.w_execs_since_key = 0 in
     if full then w.w_samples <- (seq, Buffer.length w.w_buf) :: w.w_samples;
     w.w_execs_since_key <-
       (w.w_execs_since_key + 1) mod keyframe_interval;
     put_exec w.w_scratch w.w_dctx ~full e;
     posting w.w_pc_post e.pc seq;
     posting w.w_tid_post e.tid seq
   | Sys { pid; tid; record } ->
     put_sys w.w_scratch ~pid ~tid record;
     posting w.w_sys_post record.name seq
   | Signal { pid; tid; signum; handler; resume } ->
     put_signal w.w_scratch ~pid ~tid ~signum ~handler ~resume);
  flush_scratch w;
  w.w_events <- seq + 1

let add_checkpoint w (ck : Vm.Event.checkpoint) =
  w.w_checkpoints <- (ck.ck_events, Buffer.length w.w_buf) :: w.w_checkpoints;
  put_checkpoint w.w_scratch ck;
  flush_scratch w;
  w.w_ck <- w.w_ck + 1

let encode_index w =
  let b = Buffer.create 1024 in
  put_uint b w.w_events;
  let pairs lst =
    let arr = Array.of_list (List.rev lst) in
    put_uint b (Array.length arr);
    let pk = ref 0 and pv = ref 0 in
    Array.iter
      (fun (k, v) ->
         put_uint b (k - !pk);
         put_uint b (v - !pv);
         pk := k;
         pv := v)
      arr
  in
  pairs w.w_samples;
  pairs w.w_checkpoints;
  let sorted_postings tbl cmp =
    Hashtbl.fold (fun k l acc -> (k, Array.of_list (List.rev !l)) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> cmp a b)
  in
  let pcs = sorted_postings w.w_pc_post Int64.compare in
  put_uint b (List.length pcs);
  let prev = ref 0L in
  List.iter
    (fun (pc, seqs) ->
       put_u64 b (Int64.sub pc !prev);
       prev := pc;
       put_deltas b seqs)
    pcs;
  let syss = sorted_postings w.w_sys_post String.compare in
  put_uint b (List.length syss);
  List.iter
    (fun (name, seqs) ->
       put_str b name;
       put_deltas b seqs)
    syss;
  let tids = sorted_postings w.w_tid_post compare in
  put_uint b (List.length tids);
  List.iter
    (fun (tid, seqs) ->
       put_uint b tid;
       put_deltas b seqs)
    tids;
  Buffer.contents b

let add_trailer buf ~meta_off ~index_off ~taint_off =
  let fixed = Buffer.create 24 in
  put_fix64 fixed (Int64.of_int meta_off);
  put_fix64 fixed (Int64.of_int index_off);
  put_fix64 fixed (Int64.of_int taint_off);
  let fixed = Buffer.contents fixed in
  Buffer.add_string buf fixed;
  put_fix64 buf (Robust.Journal.fnv64 fixed);
  Buffer.add_string buf trailer_magic

let write_atomically path contents =
  Robust.Diskio.write_atomic ~path contents

(** Seal the store: meta + index + trailer, then an atomic
    tmp-and-rename write so a crash can never leave a torn file under
    the final name. *)
let finish w (m : meta) =
  let meta_off = Buffer.length w.w_buf in
  add_frame w.w_buf (encode_meta m);
  let index_off = Buffer.length w.w_buf in
  add_frame w.w_buf (encode_index w);
  add_trailer w.w_buf ~meta_off ~index_off ~taint_off:0;
  let contents = Buffer.contents w.w_buf in
  write_atomically w.w_path contents;
  Telemetry.Metrics.incr m_written;
  Telemetry.Metrics.add m_bytes (String.length contents);
  Telemetry.Metrics.add m_frames (w.w_frames + 2);
  Telemetry.Metrics.add m_checkpoints w.w_ck

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type reader = {
  raw : string;
  r_fingerprint : string;
  frames_off : int;
  frames_end : int;                     (* = meta_off *)
  r_meta : meta;
  r_events : int;
  samples : (int * int) array;          (* (seq, offset), ascending *)
  r_checkpoints : (int * int) array;    (* (ck_events, offset), ascending *)
  pc_post : (int64, int array) Hashtbl.t;
  sys_post : (string, int array) Hashtbl.t;
  tid_post : (int, int array) Hashtbl.t;
}

let decode_index (payload : string) =
  let c = { src = payload; pos = 0 } in
  let events = get_uint c in
  let pairs () =
    let n = get_uint c in
    let pk = ref 0 and pv = ref 0 in
    Array.init n (fun _ ->
        let k = !pk + get_uint c in
        let v = !pv + get_uint c in
        pk := k;
        pv := v;
        (k, v))
  in
  let samples = pairs () in
  let checkpoints = pairs () in
  let n_pc = get_uint c in
  let pc_post = Hashtbl.create (max 16 n_pc) in
  let prev = ref 0L in
  for _ = 1 to n_pc do
    let pc = Int64.add !prev (get_u64 c) in
    prev := pc;
    Hashtbl.replace pc_post pc (get_deltas c)
  done;
  let n_sys = get_uint c in
  let sys_post = Hashtbl.create (max 4 n_sys) in
  for _ = 1 to n_sys do
    let name = get_str c in
    Hashtbl.replace sys_post name (get_deltas c)
  done;
  let n_tid = get_uint c in
  let tid_post = Hashtbl.create (max 4 n_tid) in
  for _ = 1 to n_tid do
    let tid = get_uint c in
    Hashtbl.replace tid_post tid (get_deltas c)
  done;
  (events, samples, checkpoints, pc_post, sys_post, tid_post)

let read_file path = Robust.Diskio.read_all path

(** Open and validate a store.  All structural metadata (trailer,
    meta, index) is checked now, and every frame's checksum is
    verified in one pass, so a reader that opens successfully cannot
    later trip over a torn or bit-flipped region. *)
let open_file path : reader =
  let raw = try read_file path with Sys_error m -> corrupt "unreadable: %s" m in
  let len = String.length raw in
  if len < String.length magic + trailer_size then corrupt "file too short";
  if not (String.sub raw 0 (String.length magic) = magic) then
    corrupt "bad magic";
  let hdr = { src = raw; pos = String.length magic } in
  let r_fingerprint = get_str hdr in
  let frames_off = hdr.pos in
  (* trailer *)
  let toff = len - trailer_size in
  if String.sub raw (len - 8) 8 <> trailer_magic then
    corrupt "bad trailer magic";
  let fixed = String.sub raw toff 24 in
  let tc = { src = raw; pos = toff } in
  let meta_off = Int64.to_int (get_fix64 tc) in
  let index_off = Int64.to_int (get_fix64 tc) in
  let taint_off = Int64.to_int (get_fix64 tc) in
  let sum = get_fix64 tc in
  if not (Int64.equal sum (Robust.Journal.fnv64 fixed)) then
    corrupt "trailer checksum mismatch";
  if meta_off < frames_off || meta_off >= len then corrupt "meta offset";
  if index_off <= meta_off || index_off >= len then corrupt "index offset";
  if taint_off <> 0 && (taint_off <= index_off || taint_off >= len) then
    corrupt "taint offset";
  let meta_payload, _ = read_frame raw ~limit:index_off meta_off in
  let r_meta = decode_meta meta_payload in
  let index_end = if taint_off <> 0 then taint_off else toff in
  let index_payload, _ = read_frame raw ~limit:index_end index_off in
  let r_events, samples, r_checkpoints, pc_post, sys_post, tid_post =
    decode_index index_payload
  in
  (* verify every event/checkpoint frame checksum; count both kinds *)
  let off = ref frames_off in
  let n_ev = ref 0 and n_ck = ref 0 in
  while !off < meta_off do
    let payload, next = read_frame raw ~limit:meta_off !off in
    if String.length payload = 0 then corrupt "empty frame at %d" !off;
    if Char.code payload.[0] = tag_checkpoint then incr n_ck else incr n_ev;
    off := next
  done;
  if !n_ev <> r_events then
    corrupt "event count mismatch: %d frames, index says %d" !n_ev r_events;
  if !n_ck <> Array.length r_checkpoints then
    corrupt "checkpoint count mismatch";
  Telemetry.Metrics.incr m_opened;
  { raw; r_fingerprint; frames_off; frames_end = meta_off; r_meta; r_events;
    samples; r_checkpoints; pc_post; sys_post; tid_post }

let fingerprint r = r.r_fingerprint
let event_count r = r.r_events
let meta r = r.r_meta

let taint_of_reader_path raw len =
  (* decode the taint section if the trailer points at one *)
  let toff = len - trailer_size in
  let tc = { src = raw; pos = toff + 16 } in
  let taint_off = Int64.to_int (get_fix64 tc) in
  if taint_off = 0 then None
  else
    let payload, _ = read_frame raw ~limit:toff taint_off in
    Some (decode_taint payload)

let taint r = taint_of_reader_path r.raw (String.length r.raw)

(** Rewrite [path] with the taint hint appended: the old trailer is
    replaced by a taint frame plus a fresh trailer.  Atomic like
    {!finish}. *)
let save_taint ~path (h : taint_hint) =
  let raw = read_file path in
  let len = String.length raw in
  if len < trailer_size || String.sub raw (len - 8) 8 <> trailer_magic then
    corrupt "refusing taint append: no valid trailer";
  let toff = len - trailer_size in
  let tc = { src = raw; pos = toff } in
  let meta_off = Int64.to_int (get_fix64 tc) in
  let index_off = Int64.to_int (get_fix64 tc) in
  let old_taint = Int64.to_int (get_fix64 tc) in
  (* drop an existing taint section along with the trailer *)
  let keep = if old_taint <> 0 then old_taint else toff in
  let b = Buffer.create (keep + 256) in
  Buffer.add_substring b raw 0 keep;
  let taint_off = Buffer.length b in
  add_frame b (encode_taint h);
  add_trailer b ~meta_off ~index_off ~taint_off;
  write_atomically path (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Sequential cursor over a reader                                     *)
(* ------------------------------------------------------------------ *)

type rcursor = {
  rd : reader;
  mutable c_seq : int;    (* seq of the next event the cursor returns *)
  mutable c_off : int;
  c_dctx : dctx;
}

let cursor_start rd =
  { rd; c_seq = 0; c_off = rd.frames_off; c_dctx = fresh_dctx () }

let rcursor_seq c = c.c_seq

(** Next event, skipping checkpoint frames (they own no seq). *)
let rec read_next (c : rcursor) : Vm.Event.t option =
  if c.c_off >= c.rd.frames_end then None
  else begin
    let payload, next = read_frame c.rd.raw ~limit:c.rd.frames_end c.c_off in
    c.c_off <- next;
    match decode_payload c.c_dctx payload with
    | D_checkpoint _ -> read_next c
    | D_event ev ->
      c.c_seq <- c.c_seq + 1;
      Some ev
  end

(** Cursor positioned at event [target], restarted from the nearest
    keyframe sample at or before it. *)
let cursor_at rd target : rcursor =
  if target < 0 || target > rd.r_events then
    invalid_arg (Printf.sprintf "Store.cursor_at %d (of %d)" target rd.r_events);
  (* greatest sample with seq <= target; fall back to the stream head *)
  let best = ref (0, rd.frames_off) in
  Array.iter
    (fun (s, o) -> if s <= target && s >= fst !best then best := (s, o))
    rd.samples;
  let seq0, off0 = !best in
  let c = { rd; c_seq = seq0; c_off = off0; c_dctx = fresh_dctx () } in
  while c.c_seq < target do
    match read_next c with
    | Some _ -> ()
    | None -> corrupt "seek to %d ran off the stream at %d" target c.c_seq
  done;
  c

let checkpoint_at rd off : Vm.Event.checkpoint =
  let payload, _ = read_frame rd.raw ~limit:rd.frames_end off in
  match decode_payload (fresh_dctx ()) payload with
  | D_checkpoint ck -> ck
  | D_event _ -> corrupt "expected checkpoint frame at %d" off

let checkpoints rd = rd.r_checkpoints

let pc_seqs rd pc =
  match Hashtbl.find_opt rd.pc_post pc with Some a -> a | None -> [||]

let sys_seqs rd name =
  match Hashtbl.find_opt rd.sys_post name with Some a -> a | None -> [||]

let tid_seqs rd tid =
  match Hashtbl.find_opt rd.tid_post tid with Some a -> a | None -> [||]

(* tid postings cover exactly the exec events, so their total size is
   the exec count — no stream scan needed *)
let exec_count rd =
  Hashtbl.fold (fun _ seqs acc -> acc + Array.length seqs) rd.tid_post 0
