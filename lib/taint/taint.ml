(** Forward dynamic taint over a recorded trace.

    Shadow state: per-thread registers and flags, byte-granular
    memory, and (policy-dependent) kernel-object bytes.  The policy
    captures what a tool's taint engine can follow: Pin-based tools
    track registers and memory but lose taint through the kernel
    (files, pipes, sockets), which is how the covert-propagation rows
    of Table II fail. *)

type policy = {
  through_files : bool;   (** write(2)-then-read(2) round trips *)
  through_pipes : bool;
  through_sockets : bool;
}

(** Pin-class taint: kernel round-trips all lose taint. *)
let pin_policy =
  { through_files = false; through_pipes = false; through_sockets = false }

(** Full kernel-object tracking (our extension). *)
let full_policy =
  { through_files = true; through_pipes = true; through_sockets = true }

open Vm.Access

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

type result = {
  tainted : bool array;
      (** per event index: did the instruction read tainted data *)
  tainted_branch : (int * bool) list;
      (** (event index, branch direction) of [Jcc]s with tainted flags *)
  tainted_jumps : int list;
      (** event indices of indirect jumps/calls with tainted targets *)
  tainted_count : int;   (** number of tainted [Exec] events *)
  kills : int;
      (** strong updates that removed existing taint (untainted data
          overwriting a tainted register/flag/byte) — where data flow
          actually dies, not merely fails to spread *)
  kernel_writes : int list;
      (** event indices where tainted data left through the kernel
          without the policy following it (diagnostic for Es2) *)
}

(* registry metrics: Figure 3's tainted-instruction count is read back
   off [metric_tainted_insns] by the evaluation harness *)
let metric_tainted_insns = "taint.tainted_insns"

let m_tainted_insns = Telemetry.Metrics.counter metric_tainted_insns
let m_kills = Telemetry.Metrics.counter "taint.kills"

let analyze ?(policy = pin_policy) ~(sources : (int64 * int) list)
    (events : Vm.Event.t array) : result =
  Telemetry.with_span "taint.analyze" @@ fun () ->
  (* ambient budget meter, fetched once: the per-event charge below is
     a single option match when no cell supervisor is active *)
  let meter = Robust.Meter.ambient () in
  let kills = ref 0 in
  let mem : (int64, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (addr, len) ->
       for i = 0 to len - 1 do
         Hashtbl.replace mem (Int64.add addr (Int64.of_int i)) ()
       done)
    sources;
  let regs : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let xmms : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let flags : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  (* kernel object shadow: (obj, byte offset); streams (pipes) use a
     per-object cursor pair so offsets line up *)
  let kobj : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let mem_tainted a n =
    let rec go i =
      i < n && (Hashtbl.mem mem (Int64.add a (Int64.of_int i)) || go (i + 1))
    in
    go 0
  in
  let set_mem a n v =
    for i = 0 to n - 1 do
      let key = Int64.add a (Int64.of_int i) in
      if v then Hashtbl.replace mem key ()
      else if Hashtbl.mem mem key then begin
        Hashtbl.remove mem key;
        incr kills
      end
    done
  in
  let tainted = Array.make (Array.length events) false in
  let branches = ref [] and jumps = ref [] and kwrites = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun idx ev ->
       (match meter with
        | Some m -> Robust.Meter.charge_taint_events m 1
        | None -> ());
       match ev with
       | Vm.Event.Exec e ->
         let acc = Vm.Access.of_insn e.regs_before e.insn in
         let in_taint =
           List.exists (fun r -> Hashtbl.mem regs (e.tid, Isa.Reg.index r))
             acc.r_regs
           || List.exists
             (fun x -> Hashtbl.mem xmms (e.tid, Isa.Reg.xmm_index x))
             acc.r_xmm
           || List.exists (fun (a, n) -> mem_tainted a n) acc.r_mem
           || (acc.r_flags && Hashtbl.mem flags e.tid)
         in
         if in_taint then begin
           tainted.(idx) <- true;
           incr count
         end;
         (* branch/jump classification *)
         (match e.insn with
          | Jcc (_, target) when acc.r_flags && Hashtbl.mem flags e.tid ->
            branches := (idx, Int64.equal e.next_pc target) :: !branches
          | (Jmp (Indirect _) | Call (Indirect _)) when in_taint ->
            jumps := idx :: !jumps
          | _ -> ());
         (* strong updates on written state *)
         List.iter
           (fun r ->
              let key = (e.tid, Isa.Reg.index r) in
              if in_taint then Hashtbl.replace regs key ()
              else if Hashtbl.mem regs key then begin
                Hashtbl.remove regs key;
                incr kills
              end)
           acc.w_regs;
         List.iter
           (fun x ->
              let key = (e.tid, Isa.Reg.xmm_index x) in
              if in_taint then Hashtbl.replace xmms key ()
              else if Hashtbl.mem xmms key then begin
                Hashtbl.remove xmms key;
                incr kills
              end)
           acc.w_xmm;
         List.iter (fun (a, n) -> set_mem a n in_taint) acc.w_mem;
         if acc.w_flags then
           if in_taint then Hashtbl.replace flags e.tid ()
           else if Hashtbl.mem flags e.tid then begin
             Hashtbl.remove flags e.tid;
             incr kills
           end
       | Vm.Event.Sys { record; _ } ->
         List.iter
           (fun eff ->
              match eff with
              | Vm.Event.Eff_write { obj; off; addr; len } ->
                (* memory -> kernel object; the policy decides whether
                   taint survives the kernel round trip *)
                let follow =
                  policy.through_files || policy.through_pipes
                  || policy.through_sockets
                in
                let any_tainted = mem_tainted addr len in
                if any_tainted && not follow then kwrites := idx :: !kwrites;
                if follow then
                  for i = 0 to len - 1 do
                    if mem_tainted (Int64.add addr (Int64.of_int i)) 1 then
                      Hashtbl.replace kobj (obj, off + i) ()
                  done
              | Vm.Event.Eff_read { obj; off; addr; len; _ } ->
                (* kernel object -> memory: strong update *)
                ignore record;
                for i = 0 to len - 1 do
                  let t = Hashtbl.mem kobj (obj, off + i) in
                  set_mem (Int64.add addr (Int64.of_int i)) 1 t
                done
              | Vm.Event.Eff_spawn _ -> ())
           record.effects
       | Vm.Event.Signal _ -> ())
    events;
  Telemetry.Metrics.add m_tainted_insns !count;
  Telemetry.Metrics.add m_kills !kills;
  { tainted;
    tainted_branch = List.rev !branches;
    tainted_jumps = List.rev !jumps;
    tainted_count = !count;
    kills = !kills;
    kernel_writes = List.rev !kwrites }
