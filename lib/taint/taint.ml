(** Forward dynamic taint over a recorded trace.

    Shadow state: per-thread registers and flags, byte-granular
    memory, and (policy-dependent) kernel-object bytes.  The policy
    captures what a tool's taint engine can follow: Pin-based tools
    track registers and memory but lose taint through the kernel
    (files, pipes, sockets), which is how the covert-propagation rows
    of Table II fail.

    The analysis drives the trace through its cursor API, so it works
    identically over in-memory and store-backed traces, and optionally
    records {e provenance} — for each write that became tainted, which
    tainted locations fed it — which is what the debugger's "why is
    this byte tainted" query walks. *)

type policy = {
  through_files : bool;   (** write(2)-then-read(2) round trips *)
  through_pipes : bool;
  through_sockets : bool;
}

(** Pin-class taint: kernel round-trips all lose taint. *)
let pin_policy =
  { through_files = false; through_pipes = false; through_sockets = false }

(** Full kernel-object tracking (our extension). *)
let full_policy =
  { through_files = true; through_pipes = true; through_sockets = true }

open Vm.Access

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

(** A taintable location. *)
type loc =
  | L_reg of int * int    (** (tid, register index) *)
  | L_xmm of int * int    (** (tid, xmm index) *)
  | L_flags of int        (** tid *)
  | L_mem of int64        (** one byte of memory *)
  | L_kobj of int * int   (** (kernel object, byte offset) *)

let pp_loc ppf = function
  | L_reg (tid, r) ->
    Fmt.pf ppf "%s@%d" (Isa.Reg.show (Isa.Reg.of_index r)) tid
  | L_xmm (tid, x) -> Fmt.pf ppf "XMM%d@%d" x tid
  | L_flags tid -> Fmt.pf ppf "flags@%d" tid
  | L_mem a -> Fmt.pf ppf "[0x%Lx]" a
  | L_kobj (obj, off) -> Fmt.pf ppf "kobj%d+%d" obj off

(** One taint flow: at event [p_ev], location [p_dst] became tainted
    because tainted [p_srcs] were read.  A location with no entry was
    tainted at the source (an argv byte, say). *)
type prov_entry = { p_ev : int; p_dst : loc; p_srcs : loc list }

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

type result = {
  tainted : bool array;
      (** per event index: did the instruction read tainted data *)
  tainted_branch : (int * bool) list;
      (** (event index, branch direction) of [Jcc]s with tainted flags *)
  tainted_jumps : int list;
      (** event indices of indirect jumps/calls with tainted targets *)
  tainted_count : int;   (** number of tainted [Exec] events *)
  kills : int;
      (** strong updates that removed existing taint (untainted data
          overwriting a tainted register/flag/byte) — where data flow
          actually dies, not merely fails to spread *)
  kernel_writes : int list;
      (** event indices where tainted data left through the kernel
          without the policy following it (diagnostic for Es2) *)
  prov : prov_entry list;
      (** taint flows in execution order; empty unless the analysis
          ran with [~provenance:true] *)
}

(* registry metrics: Figure 3's tainted-instruction count is read back
   off [metric_tainted_insns] by the evaluation harness *)
let metric_tainted_insns = "taint.tainted_insns"

let m_tainted_insns = Telemetry.Metrics.counter metric_tainted_insns
let m_kills = Telemetry.Metrics.counter "taint.kills"

let analyze ?(policy = pin_policy) ?(provenance = false)
    ~(sources : (int64 * int) list) (trace : Trace.t) : result =
  Telemetry.with_span "taint.analyze" @@ fun () ->
  (* ambient budget meter, fetched once: the per-event charge below is
     a single option match when no cell supervisor is active *)
  let meter = Robust.Meter.ambient () in
  let kills = ref 0 in
  let mem : (int64, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (addr, len) ->
       for i = 0 to len - 1 do
         Hashtbl.replace mem (Int64.add addr (Int64.of_int i)) ()
       done)
    sources;
  let regs : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let xmms : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let flags : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  (* kernel object shadow: (obj, byte offset); streams (pipes) use a
     per-object cursor pair so offsets line up *)
  let kobj : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let mem_tainted a n =
    let rec go i =
      i < n && (Hashtbl.mem mem (Int64.add a (Int64.of_int i)) || go (i + 1))
    in
    go 0
  in
  let set_mem a n v =
    for i = 0 to n - 1 do
      let key = Int64.add a (Int64.of_int i) in
      if v then Hashtbl.replace mem key ()
      else if Hashtbl.mem mem key then begin
        Hashtbl.remove mem key;
        incr kills
      end
    done
  in
  let n_events = Trace.length trace in
  let tainted = Array.make (max 1 n_events) false in
  let branches = ref [] and jumps = ref [] and kwrites = ref [] in
  let prov = ref [] in
  let count = ref 0 in
  Trace.iteri trace (fun idx ev ->
      (match meter with
       | Some m -> Robust.Meter.charge_taint_events m 1
       | None -> ());
      match ev with
      | Vm.Event.Exec e ->
        let acc = Vm.Access.of_insn e.regs_before e.insn in
        let in_taint =
          List.exists (fun r -> Hashtbl.mem regs (e.tid, Isa.Reg.index r))
            acc.r_regs
          || List.exists
            (fun x -> Hashtbl.mem xmms (e.tid, Isa.Reg.xmm_index x))
            acc.r_xmm
          || List.exists (fun (a, n) -> mem_tainted a n) acc.r_mem
          || (acc.r_flags && Hashtbl.mem flags e.tid)
        in
        if in_taint then begin
          tainted.(idx) <- true;
          incr count
        end;
        (* tainted inputs of this instruction, for provenance *)
        let srcs =
          if not (provenance && in_taint) then []
          else
            List.filter_map
              (fun r ->
                 let i = Isa.Reg.index r in
                 if Hashtbl.mem regs (e.tid, i) then Some (L_reg (e.tid, i))
                 else None)
              acc.r_regs
            @ List.filter_map
              (fun x ->
                 let i = Isa.Reg.xmm_index x in
                 if Hashtbl.mem xmms (e.tid, i) then Some (L_xmm (e.tid, i))
                 else None)
              acc.r_xmm
            @ List.concat_map
              (fun (a, n) ->
                 List.filter_map
                   (fun i ->
                      let b = Int64.add a (Int64.of_int i) in
                      if Hashtbl.mem mem b then Some (L_mem b) else None)
                   (List.init n Fun.id))
              acc.r_mem
            @ (if acc.r_flags && Hashtbl.mem flags e.tid then
                 [ L_flags e.tid ]
               else [])
        in
        let flow dst =
          if provenance && in_taint then
            prov := { p_ev = idx; p_dst = dst; p_srcs = srcs } :: !prov
        in
        (* branch/jump classification *)
        (match e.insn with
         | Jcc (_, target) when acc.r_flags && Hashtbl.mem flags e.tid ->
           branches := (idx, Int64.equal e.next_pc target) :: !branches
         | (Jmp (Indirect _) | Call (Indirect _)) when in_taint ->
           jumps := idx :: !jumps
         | _ -> ());
        (* strong updates on written state *)
        List.iter
          (fun r ->
             let key = (e.tid, Isa.Reg.index r) in
             if in_taint then begin
               Hashtbl.replace regs key ();
               flow (L_reg (e.tid, Isa.Reg.index r))
             end
             else if Hashtbl.mem regs key then begin
               Hashtbl.remove regs key;
               incr kills
             end)
          acc.w_regs;
        List.iter
          (fun x ->
             let key = (e.tid, Isa.Reg.xmm_index x) in
             if in_taint then begin
               Hashtbl.replace xmms key ();
               flow (L_xmm (e.tid, Isa.Reg.xmm_index x))
             end
             else if Hashtbl.mem xmms key then begin
               Hashtbl.remove xmms key;
               incr kills
             end)
          acc.w_xmm;
        List.iter
          (fun (a, n) ->
             set_mem a n in_taint;
             if in_taint then
               for i = 0 to n - 1 do
                 flow (L_mem (Int64.add a (Int64.of_int i)))
               done)
          acc.w_mem;
        if acc.w_flags then
          if in_taint then begin
            Hashtbl.replace flags e.tid ();
            flow (L_flags e.tid)
          end
          else if Hashtbl.mem flags e.tid then begin
            Hashtbl.remove flags e.tid;
            incr kills
          end
      | Vm.Event.Sys { record; _ } ->
        List.iter
          (fun eff ->
             match eff with
             | Vm.Event.Eff_write { obj; off; addr; len } ->
               (* memory -> kernel object; the policy decides whether
                  taint survives the kernel round trip *)
               let follow =
                 policy.through_files || policy.through_pipes
                 || policy.through_sockets
               in
               let any_tainted = mem_tainted addr len in
               if any_tainted && not follow then kwrites := idx :: !kwrites;
               if follow then
                 for i = 0 to len - 1 do
                   let b = Int64.add addr (Int64.of_int i) in
                   if mem_tainted b 1 then begin
                     Hashtbl.replace kobj (obj, off + i) ();
                     if provenance then
                       prov :=
                         { p_ev = idx; p_dst = L_kobj (obj, off + i);
                           p_srcs = [ L_mem b ] }
                         :: !prov
                   end
                 done
             | Vm.Event.Eff_read { obj; off; addr; len; _ } ->
               (* kernel object -> memory: strong update *)
               ignore record;
               for i = 0 to len - 1 do
                 let t = Hashtbl.mem kobj (obj, off + i) in
                 let b = Int64.add addr (Int64.of_int i) in
                 set_mem b 1 t;
                 if t && provenance then
                   prov :=
                     { p_ev = idx; p_dst = L_mem b;
                       p_srcs = [ L_kobj (obj, off + i) ] }
                     :: !prov
               done
             | Vm.Event.Eff_spawn _ -> ())
          record.effects
      | Vm.Event.Signal _ -> ());
  Telemetry.Metrics.add m_tainted_insns !count;
  Telemetry.Metrics.add m_kills !kills;
  let tainted_branch = List.rev !branches in
  let r =
    { tainted;
      tainted_branch;
      tainted_jumps = List.rev !jumps;
      tainted_count = !count;
      kills = !kills;
      kernel_writes = List.rev !kwrites;
      prov = List.rev !prov }
  in
  (* persist the summary so a store-backed trace answers "first taint
     event" on later opens without re-analyzing *)
  let tainted_seqs = ref [] in
  for i = n_events - 1 downto 0 do
    if tainted.(i) then tainted_seqs := i :: !tainted_seqs
  done;
  Trace.save_taint_hint trace
    { Trace.Store.th_first =
        (match !tainted_seqs with [] -> -1 | i :: _ -> i);
      th_tainted = Array.of_list !tainted_seqs;
      th_branches = Array.of_list tainted_branch };
  r
