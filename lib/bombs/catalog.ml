(** The full bomb dataset: the 22 Table II bombs in paper order, plus
    the negative bomb and the two Figure 3 programs. *)

let table2 : Common.t list =
  Decl.all @ Covert.all @ Parallel.all @ Array.all @ Contextual.all
  @ Jump.all @ Fp.all @ External_call.all @ Crypto.all

let extras : Common.t list = Extras.all

let all : Common.t list = table2 @ extras

let find_opt name = List.find_opt (fun (b : Common.t) -> b.name = name) all

let find name =
  match find_opt name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Catalog.find: unknown bomb %s" name)

let names = List.map (fun (b : Common.t) -> b.name) all

(** Image cache: linking is deterministic, so share images. *)
let image_cache : (string, Asm.Image.t) Hashtbl.t = Hashtbl.create 32

let image (b : Common.t) =
  match Hashtbl.find_opt image_cache b.name with
  | Some i -> i
  | None ->
    let i = Common.link b in
    Hashtbl.replace image_cache b.name i;
    i

(** Binary-size statistics for the dataset section (§V-A). *)
let size_stats () =
  let sizes =
    List.map (fun b -> Asm.Image.size (image b)) table2
    |> List.sort compare
  in
  let n = List.length sizes in
  let median =
    if n = 0 then 0
    else if n mod 2 = 1 then List.nth sizes (n / 2)
    else (List.nth sizes ((n / 2) - 1) + List.nth sizes (n / 2)) / 2
  in
  (List.hd sizes, median, List.nth sizes (n - 1))
